// Parallel: fan the deterministic event loop out over shards and show that
// nothing changes — then show what the parallelism costs.
//
// WithParallelism splits the simulation into per-shard event loops, one OS
// thread each: every partition group (primary, its backups, its disk, its
// restarter) lives on one shard, clients are striped across shards, and the
// shards advance through conservative time windows of one lookahead horizon,
// exchanging cross-shard messages at a barrier between windows. Because
// events are ordered by a width-independent key — (time, sender, per-sender
// sequence) — the run is bit-identical at every shard count: same
// throughput, same event count, same latency percentiles.
//
// The demo runs an 8-partition cluster at widths 1, 2, 4 and 8 and prints
// the invariant columns next to the width-dependent ones (cross-shard
// messages, barrier overhead). It then shrinks the horizon to show the
// tradeoff: a shorter conservative window is more barriers for the same
// virtual time. On a many-core host the wider runs finish faster in wall
// clock; on a single core they cost a little extra synchronization — either
// way the numbers below never move.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const (
	partitions = 8
	clients    = 40
	keysPerTxn = 8
)

func run(shards int, horizon specdb.Time) specdb.Result {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(partitions),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(42),
		specdb.WithWarmup(20*specdb.Millisecond),
		specdb.WithMeasure(100*specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions: partitions,
				KeysPerTxn: keysPerTxn,
				MPFraction: 0.1,
			}
		}),
		specdb.WithParallelism(specdb.ParallelismConfig{
			Shards:  shards,
			Horizon: horizon, // zero: one network one-way latency
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	return db.Run()
}

func main() {
	fmt.Println("8-partition microbenchmark, 10% multi-partition, seed 42")
	fmt.Println()
	fmt.Printf("%7s  %12s  %9s  %9s  %9s  %11s\n",
		"shards", "txns/s", "p99 µs", "events", "barriers", "cross-shard")
	for _, w := range []int{1, 2, 4, 8} {
		r := run(w, 0)
		p := r.Parallel
		fmt.Printf("%7d  %12.0f  %9.0f  %9d  %9d  %11d\n",
			w, r.Throughput, r.P99.Micros(), r.Events, p.Barriers, p.CrossShardMsgs)
	}
	fmt.Println()
	fmt.Println("txns/s, p99 and events are identical at every width: the sharded")
	fmt.Println("runtime is bit-deterministic. Only the cross-shard exchange volume")
	fmt.Println("depends on placement. Wall-clock speedup tracks the host's cores.")
	fmt.Println()

	// The horizon knob: the conservative window is the lookahead the shards
	// may run ahead of each other. Shrinking it multiplies barriers (more
	// synchronization per virtual second) without changing any result.
	fmt.Printf("%12s  %12s  %9s\n", "horizon", "txns/s", "barriers")
	for _, h := range []specdb.Time{20 * specdb.Microsecond, 5 * specdb.Microsecond, specdb.Microsecond} {
		r := run(4, h)
		fmt.Printf("%12v  %12.0f  %9d\n", h, r.Throughput, r.Parallel.Barriers)
	}
}
