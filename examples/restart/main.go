// Restart: crash a durable, unreplicated partition mid-run and recover it
// from disk. A two-partition cluster runs the microbenchmark under
// speculation with command logging and fuzzy checkpoints enabled
// (WithDurability); at t=150 ms partition 0's primary fail-stops. There is
// no backup this time — after the restart delay a fresh process loads the
// latest checkpoint, replays the command-log tail in commit order, resolves
// the prepared-but-undecided transactions through the coordinator, and
// resumes. Throughput dips for the restart-plus-replay window and recovers.
//
// The second half sweeps the checkpoint interval: tighter checkpoints leave
// a shorter log tail to replay, so recovery time shrinks as the interval
// does — the knob that trades steady-state checkpoint traffic against
// recovery latency.
//
// Everything runs on the deterministic simulator: the same seed, fault
// schedule and durability knobs reproduce the same crash, the same replay,
// and the same numbers, bit for bit.
package main

import (
	"fmt"
	"log"
	"strings"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const (
	partitions = 2
	clients    = 40
	keysPerTxn = 12
	crashAt    = 150 * specdb.Millisecond
	sliceLen   = 10 * specdb.Millisecond
	horizon    = 300 * specdb.Millisecond
)

// open builds the durable cluster: closed-loop saturation by default (for
// the RunFor timeline), specialized by extra options (the checkpoint sweep
// swaps in a finite open-loop arrival stream so Run drains).
func open(ckptEvery specdb.Time, extra ...specdb.Option) *specdb.DB {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []specdb.Option{
		specdb.WithPartitions(partitions),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(42),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkload(&workload.Micro{
			Partitions: partitions,
			KeysPerTxn: keysPerTxn,
			MPFraction: 0.1,
		}),
		specdb.WithDurability(specdb.DurabilityConfig{CheckpointInterval: ckptEvery}),
		specdb.WithFaults(specdb.CrashRestart(0, crashAt)),
	}
	db, err := specdb.Open(append(opts, extra...)...)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	fmt.Printf("two partitions, no replicas, durable command log; primary 0 dies at %v\n\n", crashAt)
	db := open(25 * specdb.Millisecond)
	fmt.Println("   window        txn/s")
	for db.Now() < horizon {
		db.RunFor(sliceLen)
		m := db.Snapshot()
		bar := strings.Repeat("█", int(m.Interval.Throughput/2500))
		note := ""
		if m.Interval.Start <= crashAt && crashAt < m.Interval.End {
			note = "  ← primary 0 crashes"
		}
		fmt.Printf("%9v %8.0f %s%s\n", m.Interval.End, m.Interval.Throughput, bar, note)
	}

	res := db.Result()
	if len(res.Recovery) == 0 {
		log.Fatal("no recovery recorded")
	}
	ev := res.Recovery[0]
	fmt.Printf("\nrecovery timeline (partition %d):\n", ev.Partition)
	fmt.Printf("  crashed    %v\n", ev.CrashedAt)
	fmt.Printf("  restarted  %v  (+%v restart delay)\n", ev.RestartedAt, ev.RestartedAt-ev.CrashedAt)
	fmt.Printf("  resumed    %v  (+%v checkpoint load + log replay)\n", ev.ResumedAt, ev.RecoveryLatency())
	fmt.Printf("  downtime   %v total\n", ev.Downtime())
	fmt.Printf("\nrecovery work: %d KB checkpoint, %d KB log tail, %d txns replayed, %d buffered committed, %d dropped\n",
		ev.CheckpointBytes/1024, ev.LogBytes/1024, ev.ReplayTxns, ev.BufferedCommitted, ev.BufferedDropped)
	fmt.Printf("committed %d transactions across the crash; the recovered store is\n", res.Committed)
	fmt.Printf("bit-identical to the pre-crash committed state — nothing lost, nothing applied twice\n")

	// The sweep runs at ~40% of saturation on an open-loop arrival stream:
	// quiescent gaps are frequent, so each checkpoint is captured promptly
	// after its interval boundary and the log tail at the crash tracks the
	// configured interval instead of the workload's rare idle points.
	fmt.Printf("\ncheckpoint interval vs recovery time (same crash, same workload):\n")
	fmt.Println("  interval   log tail   replayed   recovery")
	for _, every := range []specdb.Time{100, 60, 35, 16, 7} {
		db := open(every*specdb.Millisecond,
			specdb.WithOpenLoop(specdb.OpenLoopConfig{Rate: 10000}),
			specdb.WithMeasure(250*specdb.Millisecond),
		)
		db.Run()
		ev := db.Result().Recovery[0]
		fmt.Printf("  %6vms %7d KB %10d %10v\n",
			int(every), ev.LogBytes/1024, ev.ReplayTxns, ev.RecoveryLatency())
	}
	fmt.Printf("\ntighter checkpoints ⇒ shorter log tail ⇒ faster recovery\n")
}
