// Bank: a user-defined stored procedure on top of the library's public API.
//
// Accounts are hash-partitioned across four partitions. Deposits are
// single-partition; transfers between accounts on different partitions are
// simple multi-partition transactions; a transfer aborts (user abort) when
// the source account lacks funds — exercising undo buffers, 2PC abort and,
// under speculation, cascading aborts. The demo runs the same workload under
// all three concurrency control schemes and verifies that money is conserved
// in every case.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"specdb"
	"specdb/internal/storage"
)

const (
	accountsTable = "accounts"
	nPartitions   = 4
	nAccounts     = 256
	initialCents  = 1000
)

func accountPartition(acct int) specdb.PartitionID {
	return specdb.PartitionID(acct % nPartitions)
}

func accountKey(acct int) string { return storage.KeyUint32(uint32(acct)) }

// TransferArgs moves cents from one account to another (possibly the same
// partition). A Transfer with From == To is a deposit audit no-op.
type TransferArgs struct {
	From, To int
	Cents    int64
}

// transferWork is the per-partition fragment input.
type transferWork struct {
	Debit, Credit int // account ids; -1 when not handled here
	Cents         int64
}

// TransferProc implements specdb.Procedure.
type TransferProc struct{}

// Name implements specdb.Procedure.
func (TransferProc) Name() string { return "bank.transfer" }

// Plan implements specdb.Procedure: one fragment per involved partition.
func (TransferProc) Plan(args any, cat *specdb.Catalog) specdb.Plan {
	a := args.(*TransferArgs)
	pf, pt := accountPartition(a.From), accountPartition(a.To)
	if pf == pt {
		return specdb.Plan{
			Parts:    []specdb.PartitionID{pf},
			Work:     map[specdb.PartitionID]any{pf: &transferWork{Debit: a.From, Credit: a.To, Cents: a.Cents}},
			Rounds:   1,
			CanAbort: true,
		}
	}
	parts := []specdb.PartitionID{pf, pt}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return specdb.Plan{
		Parts: parts,
		Work: map[specdb.PartitionID]any{
			pf: &transferWork{Debit: a.From, Credit: -1, Cents: a.Cents},
			pt: &transferWork{Debit: -1, Credit: a.To, Cents: a.Cents},
		},
		Rounds:   1,
		CanAbort: true,
	}
}

// Continue implements specdb.Procedure (single round).
func (TransferProc) Continue(args any, round int, prior []specdb.FragmentResult, cat *specdb.Catalog) map[specdb.PartitionID]any {
	panic("bank.transfer is single-round")
}

// Run implements specdb.Procedure.
func (TransferProc) Run(view *specdb.TxnView, w any) (any, error) {
	wk := w.(*transferWork)
	if wk.Debit >= 0 {
		v, ok := view.GetForUpdate(accountsTable, accountKey(wk.Debit))
		if !ok {
			return nil, fmt.Errorf("no such account %d", wk.Debit)
		}
		bal := v.(int64)
		if bal < wk.Cents {
			// Insufficient funds: user abort. Under speculation this
			// cascades into re-execution of everything speculated
			// after us — exactly the §5.3 abort cost.
			return nil, specdb.ErrUserAbort
		}
		view.Put(accountsTable, accountKey(wk.Debit), bal-wk.Cents)
	}
	if wk.Credit >= 0 {
		v, _ := view.GetForUpdate(accountsTable, accountKey(wk.Credit))
		view.Put(accountsTable, accountKey(wk.Credit), v.(int64)+wk.Cents)
	}
	return wk.Cents, nil
}

// Output implements specdb.Procedure.
func (TransferProc) Output(args any, final []specdb.FragmentResult) any {
	return args.(*TransferArgs).Cents
}

// gen produces random transfers, ~30% of them cross-partition.
type gen struct{ remaining int }

func (g *gen) Next(ci int, rng *rand.Rand) *specdb.Invocation {
	if g.remaining <= 0 {
		return nil
	}
	g.remaining--
	from := rng.Intn(nAccounts)
	to := rng.Intn(nAccounts)
	return &specdb.Invocation{
		Proc:    "bank.transfer",
		Args:    &TransferArgs{From: from, To: to, Cents: int64(rng.Intn(300))},
		AbortAt: specdb.NoAbort,
	}
}

var _ specdb.Generator = (*gen)(nil)

func main() {
	for _, scheme := range []specdb.Scheme{specdb.Blocking, specdb.Speculation, specdb.Locking} {
		reg := specdb.NewRegistry()
		reg.Register(TransferProc{})
		committed, insufficient := 0, 0
		db, err := specdb.Open(
			specdb.WithPartitions(nPartitions),
			specdb.WithClients(8),
			specdb.WithScheme(scheme),
			specdb.WithSeed(2024),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				s.AddTable(storage.NewBTreeTable(accountsTable))
				for a := 0; a < nAccounts; a++ {
					if accountPartition(a) == p {
						s.Table(accountsTable).Put(accountKey(a), int64(initialCents))
					}
				}
			}),
			specdb.WithWorkload(&gen{remaining: 2000}),
			specdb.WithOnComplete(func(ci int, inv *specdb.Invocation, r *specdb.Reply) {
				if r.Committed {
					committed++
				} else if r.UserAborted {
					insufficient++
				}
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		db.Run()

		// Money conservation: the sum across all partitions must equal
		// the initial endowment no matter how transfers interleaved.
		var total int64
		for p := specdb.PartitionID(0); p < nPartitions; p++ {
			db.PartitionStore(p).Table(accountsTable).Ascend("", "", func(k string, v any) bool {
				total += v.(int64)
				return true
			})
		}
		ok := "OK"
		if total != int64(nAccounts*initialCents) {
			ok = fmt.Sprintf("LOST MONEY (%d != %d)", total, nAccounts*initialCents)
		}
		fmt.Printf("%-12s committed=%4d insufficient-funds=%3d conservation=%s\n",
			scheme, committed, insufficient, ok)
	}
}
