// Elastic: split a hot partition live, under load. A four-partition cluster
// runs the microbenchmark under speculation with Zipfian home-partition
// popularity — partition 0 takes roughly half the traffic and saturates
// while the rest idle. The elasticity trigger (WithElasticity) watches
// per-partition busy time each evaluation interval; when one partition is
// saturated and at least twice as busy as the mean of the others, the
// cluster freezes at a drained quiescent point, copies the hot partition's
// upper key range to the idlest partition, appends migration records to both
// command logs, advances the routing epoch, and resumes. The generator
// re-targets moved keys through the routing table from the next transaction
// on.
//
// Everything runs on the deterministic simulator: same seed, same split at
// the same virtual time, same dip, bit for bit.
package main

import (
	"fmt"
	"log"
	"strings"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

func main() {
	const (
		partitions = 4
		clients    = 32
		keysPerTxn = 6
		sliceLen   = 10 * specdb.Millisecond
		horizon    = 200 * specdb.Millisecond
	)

	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})

	db, err := specdb.Open(
		specdb.WithPartitions(partitions),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(42),
		specdb.WithRegistry(reg),
		specdb.WithDurability(specdb.DurabilityConfig{}),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkload(&workload.Micro{
			KeysPerTxn:    keysPerTxn,
			PartitionSkew: 0.95, // partition 0 is the hot one
		}),
		specdb.WithElasticity(specdb.ElasticityConfig{}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("four partitions, %d clients, zipf(0.95) home-partition skew\n\n", clients)
	fmt.Println("   window        txn/s")
	for db.Now() < horizon {
		db.RunFor(sliceLen)
		m := db.Snapshot()
		bar := strings.Repeat("█", int(m.Interval.Throughput/2500))
		note := ""
		for _, ev := range db.Migrations() {
			if m.Interval.Start <= ev.TriggeredAt && ev.TriggeredAt < m.Interval.End {
				note = fmt.Sprintf("  ← split: partition %d → %d", ev.From, ev.To)
			}
		}
		fmt.Printf("%9v %8.0f %s%s\n", m.Interval.End, m.Interval.Throughput, bar, note)
	}

	res := db.Result()
	if len(res.Migrations) == 0 {
		log.Fatal("no migration triggered")
	}
	fmt.Printf("\nmigration timeline:\n")
	for _, ev := range res.Migrations {
		fmt.Printf("  partition %d → %d at %v: %d rows (%d bytes) in range [%s, ∞), dip %v\n",
			ev.From, ev.To, ev.TriggeredAt, ev.RowsMoved, ev.BytesMoved, ev.LoKey, ev.Dip())
	}
	fmt.Printf("  total dip %v — the only downtime elasticity cost this run\n", res.MigrationDip)

	fmt.Printf("\nper-partition busy fraction after the split:\n")
	for p, u := range res.PartUtilization {
		fmt.Printf("  partition %d: %4.0f%% %s\n", p, 100*u, strings.Repeat("▋", int(20*u)))
	}
	fmt.Printf("\ncommitted %d transactions; migration records rode both partitions' command\n", res.Committed)
	fmt.Printf("logs, so a crash after the cutover replays the split, not the stale layout\n")
}
