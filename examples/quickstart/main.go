// Quickstart: assemble a two-partition cluster running the paper's
// key/value microbenchmark engine under speculative concurrency control,
// execute a handful of transactions, and print what happened.
package main

import (
	"fmt"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

func main() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})

	const clients, keys = 2, 4

	// A fixed script: two single-partition transactions (one per
	// partition) and one multi-partition transaction spanning both.
	sp0 := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		0: {kvstore.ClientKey(0, 0, 0), kvstore.ClientKey(0, 0, 1)},
	}}
	sp1 := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		1: {kvstore.ClientKey(0, 1, 0), kvstore.ClientKey(0, 1, 1)},
	}}
	mp := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		0: {kvstore.ClientKey(0, 0, 0)},
		1: {kvstore.ClientKey(0, 1, 0)},
	}}
	script := &workload.Script{Invs: []*specdb.Invocation{
		{Proc: kvstore.ProcName, Args: sp0, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: sp1, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: mp, AbortAt: txn.NoAbort},
	}}

	cluster := specdb.New(specdb.Config{
		Partitions: 2,
		Clients:    1,
		Scheme:     specdb.Speculation,
		Seed:       1,
		Registry:   reg,
		Setup: func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		},
		Workload: script,
		OnComplete: func(ci int, inv *specdb.Invocation, r *specdb.Reply) {
			kind := "single-partition"
			if len(inv.Args.(*kvstore.Args).Keys) > 1 {
				kind = "multi-partition "
			}
			fmt.Printf("%s txn committed=%v output=%v\n", kind, r.Committed, r.Output)
		},
	})
	cluster.Run()

	// Each committed transaction incremented its keys by one.
	fmt.Printf("partition 0 counter sum: %d\n", kvstore.Sum(cluster.PartitionStore(0)))
	fmt.Printf("partition 1 counter sum: %d\n", kvstore.Sum(cluster.PartitionStore(1)))
}
