// Quickstart: open a two-partition cluster running the paper's key/value
// microbenchmark engine under speculative concurrency control, execute a
// handful of transactions, and print what happened.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

func main() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})

	const clients, keys = 2, 4

	// A fixed script: two single-partition transactions (one per
	// partition) and one multi-partition transaction spanning both.
	sp0 := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		0: {kvstore.ClientKey(0, 0, 0), kvstore.ClientKey(0, 0, 1)},
	}}
	sp1 := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		1: {kvstore.ClientKey(0, 1, 0), kvstore.ClientKey(0, 1, 1)},
	}}
	mp := &kvstore.Args{Keys: map[msg.PartitionID][]string{
		0: {kvstore.ClientKey(0, 0, 0)},
		1: {kvstore.ClientKey(0, 1, 0)},
	}}
	script := &workload.Script{Invs: []*specdb.Invocation{
		{Proc: kvstore.ProcName, Args: sp0, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: sp1, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: mp, AbortAt: txn.NoAbort},
	}}

	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(1),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(1),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(script),
		specdb.WithOnComplete(func(ci int, inv *specdb.Invocation, r *specdb.Reply) {
			kind := "single-partition"
			if len(inv.Args.(*kvstore.Args).Keys) > 1 {
				kind = "multi-partition "
			}
			fmt.Printf("%s txn committed=%v output=%v\n", kind, r.Committed, r.Output)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	db.Run()

	// Each committed transaction incremented its keys by one.
	m := db.Snapshot()
	fmt.Printf("completed %d transactions in %v of virtual time (%d events)\n",
		m.Completed, m.Now, m.Events)
	fmt.Printf("partition 0 counter sum: %d\n", kvstore.Sum(db.PartitionStore(0)))
	fmt.Printf("partition 1 counter sum: %d\n", kvstore.Sum(db.PartitionStore(1)))
}
