// Failover: crash a partition primary mid-run and watch the cluster ride
// through it. A two-partition cluster with k=2 replication (§3.2) runs the
// microbenchmark under speculation; at t=150 ms partition 0's primary
// fail-stops. Heartbeats go silent, the backup's failure detector fires, the
// backup — which already holds every committed transaction plus the
// prepared-but-undecided buffer — promotes itself, the coordinator resolves
// the in-flight multi-partition transactions, clients re-target, and the
// closed loops resume. Throughput dips for roughly the detection timeout and
// recovers.
//
// Everything runs on the deterministic simulator: the same seed and fault
// schedule reproduce the same crash, the same promotion, and the same
// numbers, bit for bit.
package main

import (
	"fmt"
	"log"
	"strings"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

func main() {
	const (
		partitions = 2
		clients    = 40
		keysPerTxn = 12
		crashAt    = 150 * specdb.Millisecond
		sliceLen   = 10 * specdb.Millisecond
		horizon    = 300 * specdb.Millisecond
	)

	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})

	db, err := specdb.Open(
		specdb.WithPartitions(partitions),
		specdb.WithClients(clients),
		specdb.WithReplicas(2), // k-safety: one backup per partition
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(42),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkload(&workload.Micro{
			Partitions: partitions,
			KeysPerTxn: keysPerTxn,
			MPFraction: 0.1,
		}),
		specdb.WithFaults(specdb.CrashPrimary(0, crashAt)),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("two partitions, k=2 replication, %d clients; primary 0 dies at %v\n\n", clients, crashAt)
	fmt.Println("   window        txn/s")
	for db.Now() < horizon {
		db.RunFor(sliceLen)
		m := db.Snapshot()
		bar := strings.Repeat("█", int(m.Interval.Throughput/2500))
		note := ""
		if m.Interval.Start <= crashAt && crashAt < m.Interval.End {
			note = "  ← primary 0 crashes"
		}
		fmt.Printf("%9v %8.0f %s%s\n", m.Interval.End, m.Interval.Throughput, bar, note)
	}

	res := db.Result()
	if len(res.Failovers) == 0 {
		log.Fatal("no failover recorded")
	}
	ev := res.Failovers[0]
	fmt.Printf("\nfailover timeline (partition %d):\n", ev.Partition)
	fmt.Printf("  crashed   %v\n", ev.CrashedAt)
	fmt.Printf("  detected  %v  (+%v of heartbeat silence)\n", ev.DetectedAt, ev.DetectedAt-ev.CrashedAt)
	fmt.Printf("  promoted  %v  (+%v of recovery work)\n", ev.PromotedAt, ev.RecoveryLatency())
	fmt.Printf("  downtime  %v total\n", ev.Downtime())
	fmt.Printf("\nrecovery work: %d buffered txns committed, %d dropped, %d in-flight aborted, %d client resends\n",
		ev.BufferedCommitted, ev.BufferedDropped, ev.AbortedInFlight, res.FailoverResends)
	fmt.Printf("committed %d transactions across the crash; the promoted backup's store is\n", res.Committed)
	fmt.Printf("the partition's state of record — nothing lost, nothing applied twice\n")
}
