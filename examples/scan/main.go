// Scan: range scans through all five schemes — the YCSB-E regime the paper
// never measured.
//
// The microbenchmark gains ScanFraction/ScanLength: that fraction of
// transactions become declared read-only short range scans (uniform start
// rank, or Zipfian under KeySkew), running against ordered B-tree tables.
// Every scheme gets a correct phantom rule, and they pay for it very
// differently:
//
//   - blocking/speculation serialize scans like any other fragment — the
//     partition is single-threaded, so a scan is just a longer turn;
//   - locking takes a shared range lock covering [lo, hi) as a unit, so a
//     writer into the range waits behind the scan instead of creating a
//     phantom — and concurrent scans share the range freely;
//   - MVCC serves scans from the transaction's arrival-timestamp snapshot —
//     read-only scans never block — and kills pending writers that would
//     write into a live reader's scanned range;
//   - OCC records the scanned range in its read set and backward validation
//     kills the scanner if any committed write landed inside the range
//     (the phantom check).
//
// The demo runs a scan-heavy mix (two-round multi-partition writers keep
// ranges exposed across 2PC) under each scheme, then sweeps the scan
// fraction for locking vs OCC. Locking holds: shared range locks are
// compatible with each other and writers just wait briefly, so throughput
// climbs smoothly as read-only scans replace write transactions, with
// essentially no deadlocks. OCC pays a phantom-kill tax: every scan whose
// range absorbed one committed write during its window is validation-killed
// and retried, so at moderate scan fractions OCC runs well below locking
// and below its own scan-free baseline — the scan-vs-write conflict regime
// where optimistic validation gets expensive.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const (
	partitions = 2
	clients    = 16
	keysPerTxn = 8
)

func run(scheme specdb.Scheme, scanFrac float64) specdb.Result {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(partitions),
		specdb.WithClients(clients),
		specdb.WithScheme(scheme),
		specdb.WithSeed(42),
		specdb.WithWarmup(20*specdb.Millisecond),
		specdb.WithMeasure(100*specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddOrderedSchema(s) // B-tree layout: scans are a tree walk
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions:   partitions,
				KeysPerTxn:   keysPerTxn,
				MPFraction:   0.3,
				TwoRound:     true, // writers hold ranges exposed across 2PC
				ScanFraction: scanFrac,
				ScanLength:   20,
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	return db.Run()
}

func kills(r specdb.Result) (validation, tsOrder, deadlock uint64) {
	for _, es := range r.EngineStats {
		validation += es.ValidationAborts
		tsOrder += es.TSOrderAborts
		deadlock += es.DeadlockKills + es.TimeoutKills
	}
	return
}

func main() {
	schemes := []specdb.Scheme{
		specdb.Blocking, specdb.Speculation, specdb.Locking,
		specdb.MVCC, specdb.OCC,
	}

	fmt.Println("Scan-heavy mix (50% scans, length <=20, 30% two-round multi-partition):")
	fmt.Printf("%-12s %10s %10s %9s %8s %8s %8s %8s\n",
		"scheme", "txn/s", "committed", "scans", "retries", "valKill", "tsKill", "dlKill")
	for _, sc := range schemes {
		r := run(sc, 0.5)
		v, ts, dl := kills(r)
		fmt.Printf("%-12s %10.0f %10d %9d %8d %8d %8d %8d\n",
			sc, r.Throughput, r.Committed, r.CommittedScan, r.Retries, v, ts, dl)
	}

	fmt.Println("\nScan fraction sweep — locking holds, OCC pays phantom kills:")
	fmt.Printf("%-6s %14s %14s %12s\n", "scan%", "locking txn/s", "occ txn/s", "occ valKill")
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		lk := run(specdb.Locking, f)
		oc := run(specdb.OCC, f)
		v, _, _ := kills(oc)
		fmt.Printf("%-6.0f %14.0f %14.0f %12d\n", f*100, lk.Throughput, oc.Throughput, v)
	}
}
