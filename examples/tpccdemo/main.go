// TPC-C demo: run the paper's modified TPC-C workload (§5.5) under each
// concurrency control scheme for a short simulated window, print throughput
// and scheme-level statistics, and verify the TPC-C consistency conditions.
package main

import (
	"fmt"

	"specdb"
	"specdb/internal/storage"
	"specdb/internal/tpcc"
)

func main() {
	const warehouses = 6
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.DefaultScale()

	fmt.Printf("TPC-C, %d warehouses on 2 partitions, 40 clients, 300 ms window\n\n", warehouses)
	fmt.Printf("%-12s %12s %10s %10s %10s %10s\n",
		"scheme", "txns/sec", "p50 µs", "p99 µs", "specul.", "retries")
	for _, scheme := range []specdb.Scheme{specdb.Blocking, specdb.Speculation, specdb.Locking} {
		reg := specdb.NewRegistry()
		tpcc.RegisterAll(reg)
		loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: 7}
		cluster := specdb.New(specdb.Config{
			Partitions: 2,
			Clients:    40,
			Scheme:     scheme,
			Seed:       7,
			Warmup:     50 * specdb.Millisecond,
			Measure:    300 * specdb.Millisecond,
			Registry:   reg,
			Catalog:    &specdb.Catalog{Meta: layout},
			Setup:      loader.Load,
			Workload: &tpcc.Mix{
				Layout: layout, Scale: scale,
				RemoteItemProb:    0.01,
				RemotePaymentProb: 0.15,
			},
		})
		res := cluster.Run()
		var speculated uint64
		for _, es := range res.EngineStats {
			speculated += es.Speculated
		}
		fmt.Printf("%-12s %12.0f %10.0f %10.0f %10d %10d\n",
			scheme, res.Throughput, res.P50.Micros(), res.P99.Micros(),
			speculated, res.Retries)

		stores := []*storage.Store{}
		for p := specdb.PartitionID(0); p < 2; p++ {
			stores = append(stores, cluster.PartitionStore(p))
		}
		if err := tpcc.CheckConsistency(layout, stores); err != nil {
			fmt.Printf("  CONSISTENCY VIOLATION: %v\n", err)
		}
	}
	fmt.Println("\n(final states pass the TPC-C clause 3.3.2 consistency checks;")
	fmt.Println(" violations would indicate lost updates or mis-applied speculation)")
}
