// TPC-C demo: run the paper's modified TPC-C workload (§5.5) under each
// concurrency control scheme, watch throughput live in 100 ms slices of
// virtual time (RunFor + Snapshot), print scheme-level statistics, and
// verify the TPC-C consistency conditions.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/storage"
	"specdb/internal/tpcc"
)

func main() {
	const warehouses = 6
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.DefaultScale()

	fmt.Printf("TPC-C, %d warehouses on 2 partitions, 40 clients, 300 ms window\n\n", warehouses)
	fmt.Printf("%-12s %12s %10s %10s %10s %10s\n",
		"scheme", "txns/sec", "p50 µs", "p99 µs", "specul.", "retries")
	for _, scheme := range []specdb.Scheme{specdb.Blocking, specdb.Speculation, specdb.Locking} {
		reg := specdb.NewRegistry()
		tpcc.RegisterAll(reg)
		loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: 7}
		db, err := specdb.Open(
			specdb.WithPartitions(2),
			specdb.WithClients(40),
			specdb.WithScheme(scheme),
			specdb.WithSeed(7),
			specdb.WithWarmup(50*specdb.Millisecond),
			specdb.WithMeasure(300*specdb.Millisecond),
			specdb.WithRegistry(reg),
			specdb.WithCatalog(&specdb.Catalog{Meta: layout}),
			specdb.WithSetup(loader.Load),
			specdb.WithWorkload(&tpcc.Mix{
				Layout: layout, Scale: scale,
				RemoteItemProb:    0.01,
				RemotePaymentProb: 0.15,
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		// Drive the run in 100 ms slices, observing live interval rates.
		for db.Now() < 300*specdb.Millisecond {
			db.RunFor(100 * specdb.Millisecond)
			m := db.Snapshot()
			fmt.Printf("  t=%3dms  interval %8.0f txns/sec  (%d committed so far)\n",
				int64(m.Now/specdb.Millisecond), m.Interval.Throughput, m.Committed)
		}
		res := db.Run() // completes the window and collects the Result
		var speculated uint64
		for _, es := range res.EngineStats {
			speculated += es.Speculated
		}
		fmt.Printf("%-12s %12.0f %10.0f %10.0f %10d %10d\n",
			scheme, res.Throughput, res.P50.Micros(), res.P99.Micros(),
			speculated, res.Retries)

		stores := []*storage.Store{}
		for p := specdb.PartitionID(0); p < 2; p++ {
			stores = append(stores, db.PartitionStore(p))
		}
		if err := tpcc.CheckConsistency(layout, stores); err != nil {
			fmt.Printf("  CONSISTENCY VIOLATION: %v\n", err)
		}
	}
	fmt.Println("\n(final states pass the TPC-C clause 3.3.2 consistency checks;")
	fmt.Println(" violations would indicate lost updates or mis-applied speculation)")
}
