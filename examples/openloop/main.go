// Openloop: push one cluster through its saturation knee with open-loop
// clients and watch tail latency explode while throughput flattens.
//
// The paper's closed-loop clients cannot see this — a saturated closed-loop
// system slows its own arrival rate, so latency looks flat no matter how
// overloaded the cluster is. Open-loop arrivals (Poisson here) keep coming
// regardless: below the knee the cluster serves the offered rate with
// sub-millisecond p99; past it the bounded per-client windows and queues
// fill, p99 jumps two orders of magnitude, and the overflow is shed as
// backpressure. Zipfian key skew (YCSB theta 0.9) makes the workload
// realistic: hot keys, not uniform private ranges.
//
// Everything runs on the deterministic simulator — the numbers below are
// identical on every run.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const (
	clients    = 40
	keysPerTxn = 12
)

func run(rate float64) specdb.Result {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(42),
		specdb.WithWarmup(50*specdb.Millisecond),
		specdb.WithMeasure(400*specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions: 2,
				KeysPerTxn: keysPerTxn,
				MPFraction: 0.1,
				KeySkew:    0.9, // YCSB-style hot keys over the shared keyspace
			}
		}),
		specdb.WithOpenLoop(specdb.OpenLoopConfig{
			Rate:   rate, // aggregate arrivals/sec across all clients
			Window: 4,    // per-client in-flight bound
			Queue:  16,   // per-client pending bound; beyond it arrivals shed
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	return db.Run()
}

func main() {
	fmt.Println("open-loop Poisson arrivals, zipf(0.9) keys, speculation, 2 partitions")
	fmt.Printf("%10s %10s %8s %8s %8s %8s %8s\n",
		"offered/s", "served/s", "p50", "p95", "p99", "max", "shed")
	for _, rate := range []float64{5000, 10000, 15000, 20000, 25000, 30000, 40000} {
		r := run(rate)
		fmt.Printf("%10.0f %10.0f %8v %8v %8v %8v %8d\n",
			rate, r.Throughput,
			r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max, r.Shed)
	}
	fmt.Println()

	// The latency split tells you *why* the tail grows: multi-partition
	// transactions stall on coordination while single-partition ones queue
	// behind them.
	r := run(30000)
	fmt.Println("latency split at 30k offered (past the knee):")
	fmt.Printf("  committed SP: n=%-6d p50=%-10v p99=%v\n", r.LatencySP.N, r.LatencySP.P50, r.LatencySP.P99)
	fmt.Printf("  committed MP: n=%-6d p50=%-10v p99=%v\n", r.LatencyMP.N, r.LatencyMP.P50, r.LatencyMP.P99)
}
