// Advisor: the §6 analytical model as a concurrency-control planner.
//
// The paper closes §5.7 imagining "a query executor [that] might record
// statistics at runtime and use a model like that presented in Section 6 to
// make the best choice". This example is that planner: given workload
// statistics (multi-partition fraction), it evaluates the closed forms and
// prints the recommended scheme across the range, reproducing Table 1's
// qualitative structure for the no-conflict single-round case — and then
// checks the recommendation against reality with a measured specdb.Sweep
// (scheme × multi-partition fraction) on the simulated cluster.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/model"
	"specdb/internal/workload"
)

const (
	clients = 40
	keys    = 12
)

// measuredWinners sweeps scheme × MP fraction and returns the measured-best
// scheme name per fraction.
func measuredWinners(fractions []float64) (map[float64]string, error) {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	schemes := []specdb.Scheme{specdb.Blocking, specdb.Speculation, specdb.Locking}
	cells, err := specdb.Sweep{
		Name: "advisor",
		Base: []specdb.Option{
			specdb.WithPartitions(2),
			specdb.WithClients(clients),
			specdb.WithSeed(42),
			specdb.WithWarmup(20 * specdb.Millisecond),
			specdb.WithMeasure(80 * specdb.Millisecond),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, clients, keys)
			}),
		},
		Axes: []specdb.Axis{
			specdb.SchemeAxis(schemes...),
			specdb.NumAxis("mp-fraction", fractions, func(f float64) []specdb.Option {
				return []specdb.Option{specdb.WithWorkload(&workload.Micro{
					Partitions: 2, KeysPerTxn: keys, MPFraction: f,
				})}
			}),
		},
	}.Run()
	if err != nil {
		return nil, err
	}
	best := map[float64]string{}
	tput := map[float64]float64{}
	for _, cell := range cells {
		f := cell.Xs[1]
		if cell.Result.Throughput > tput[f] {
			tput[f] = cell.Result.Throughput
			best[f] = cell.Labels[0]
		}
	}
	return best, nil
}

func main() {
	p := model.PaperParams()
	fmt.Println("Analytical model (Table 2 parameters from the paper):")
	fmt.Printf("  tsp=%v tspS=%v tmp=%v tmpC=%v l=%.1f%%\n\n",
		p.Tsp, p.TspS, p.Tmp, p.TmpC, p.L*100)

	var fractions []float64
	for pct := 0; pct <= 100; pct += 10 {
		fractions = append(fractions, float64(pct)/100)
	}
	measured, err := measuredWinners(fractions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %12s %12s %12s %12s   %-18s %s\n",
		"%MP", "blocking", "local spec", "spec", "locking", "recommendation", "measured best")
	for _, f := range fractions {
		b, ls, sp, lk := p.Blocking(f), p.LocalSpeculation(f), p.Speculation(f), p.Locking(f)
		best, name := b, "blocking"
		if ls > best {
			best, name = ls, "local speculation"
		}
		if sp > best {
			best, name = sp, "speculation"
		}
		if lk > best {
			best, name = lk, "locking"
		}
		fmt.Printf("%5.0f%% %12.0f %12.0f %12.0f %12.0f   %-18s %s\n",
			f*100, b, ls, sp, lk, name, measured[f])
	}
	fmt.Println("\nCaveats encoded in Table 1 of the paper: prefer locking when")
	fmt.Println("multi-round transactions dominate; avoid speculation when the")
	fmt.Println("abort rate is high (cascading re-execution).")
}
