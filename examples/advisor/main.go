// Advisor: the §6 analytical model as a concurrency-control planner.
//
// The paper closes §5.7 imagining "a query executor [that] might record
// statistics at runtime and use a model like that presented in Section 6 to
// make the best choice". This example is that planner: given workload
// statistics (multi-partition fraction), it evaluates the closed forms and
// prints the recommended scheme across the range, reproducing Table 1's
// qualitative structure for the no-conflict single-round case.
package main

import (
	"fmt"

	"specdb/internal/model"
)

func main() {
	p := model.PaperParams()
	fmt.Println("Analytical model (Table 2 parameters from the paper):")
	fmt.Printf("  tsp=%v tspS=%v tmp=%v tmpC=%v l=%.1f%%\n\n",
		p.Tsp, p.TspS, p.Tmp, p.TmpC, p.L*100)
	fmt.Printf("%6s %12s %12s %12s %12s   %s\n",
		"%MP", "blocking", "local spec", "spec", "locking", "recommendation")
	for pct := 0; pct <= 100; pct += 10 {
		f := float64(pct) / 100
		b, ls, sp, lk := p.Blocking(f), p.LocalSpeculation(f), p.Speculation(f), p.Locking(f)
		best, name := b, "blocking"
		if ls > best {
			best, name = ls, "local speculation"
		}
		if sp > best {
			best, name = sp, "speculation"
		}
		if lk > best {
			best, name = lk, "locking"
		}
		fmt.Printf("%5d%% %12.0f %12.0f %12.0f %12.0f   %s\n", pct, b, ls, sp, lk, name)
	}
	fmt.Println("\nCaveats encoded in Table 1 of the paper: prefer locking when")
	fmt.Println("multi-round transactions dominate; avoid speculation when the")
	fmt.Println("abort rate is high (cascading re-execution).")
}
