// Advisor: online adaptive concurrency control, live (§5.7).
//
// The paper closes §5.7 imagining "a query executor [that] might record
// statistics at runtime and use a model like that presented in Section 6 to
// make the best choice". This demo runs that planner against a live cluster:
// one DB, opened under blocking, is driven through workload phases that
// sweep the multi-partition fraction through the Figure 10 crossover points
// — pure single-partition, light multi-partition, heavy multi-partition, and
// finally heavy *two-round* multi-partition (§5.4). The advisor watches each
// 10 ms interval's measured statistics, feeds them through the §6 model, and
// switches the cluster's scheme mid-run at drained quiescent points.
//
// The printed table shows, per interval: the measured multi-partition and
// multi-round fractions, the interval throughput, the scheme the cluster is
// running, and the model's unconditional recommendation — so you can watch
// the advisor's hysteresis resist flapping and then track each crossover.
package main

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const (
	clients = 40
	keys    = 12
)

// phase is one segment of the scripted workload sweep.
type phase struct {
	label    string
	mpFrac   float64
	twoRound bool
	dur      specdb.Time
}

func main() {
	phases := []phase{
		{"pure single-partition", 0.0, false, 60 * specdb.Millisecond},
		{"10% multi-partition", 0.10, false, 60 * specdb.Millisecond},
		{"30% multi-partition", 0.30, false, 60 * specdb.Millisecond},
		{"60% two-round multi-partition", 0.60, true, 60 * specdb.Millisecond},
	}

	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	gen := func(p phase) specdb.Generator {
		return &workload.Micro{
			Partitions: 2, KeysPerTxn: keys,
			MPFraction: p.mpFrac, TwoRound: p.twoRound,
		}
	}
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Blocking), // deliberately wrong for most phases
		specdb.WithSeed(42),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(gen(phases[0])),
		specdb.WithAdvisor(specdb.AdvisorConfig{Interval: 10 * specdb.Millisecond}),
	)
	if err != nil {
		log.Fatal(err)
	}

	params := specdb.PaperModelParams()
	fmt.Println("One cluster, four workload phases, advisor enabled (10 ms intervals).")
	fmt.Printf("%8s %6s %6s %12s   %-12s %s\n",
		"t", "%MP", "%2rnd", "txns/sec", "running", "model recommends")
	for _, ph := range phases {
		if err := db.SetWorkload(gen(ph)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s --\n", ph.label)
		end := db.Now() + ph.dur
		for db.Now() < end {
			db.RunFor(10 * specdb.Millisecond)
			m := db.Snapshot()
			iv := m.Interval
			rec := params.Recommend(specdb.ModelObserved{
				MPFraction:   iv.MPFraction,
				MultiRound:   iv.MultiRoundFraction,
				AbortRate:    iv.AbortRate,
				ConflictRate: iv.ConflictRate,
			})
			fmt.Printf("%8v %5.0f%% %5.0f%% %12.0f   %-12s %s\n",
				m.Now, iv.MPFraction*100, iv.MultiRoundFraction*100,
				iv.Throughput, m.Scheme, rec)
		}
	}

	fmt.Println("\nScheme switches (all advisor-driven, at drained quiescent points):")
	for _, c := range db.SchemeHistory() {
		fmt.Printf("  t=%-12v %v → %v\n", c.At, c.From, c.To)
	}
	fmt.Println("\nCaveats encoded in Table 1 of the paper: speculation wins when")
	fmt.Println("multi-partition transactions are simple and aborts rare; blocking")
	fmt.Println("when nearly everything is single-partition. For multi-round")
	fmt.Println("transactions the paper prescribes locking; with the optimistic")
	fmt.Println("engines available, the extended model sends a conflict-free")
	fmt.Println("multi-round phase to OCC instead — locking remains the pick once")
	fmt.Println("conflicts climb.")
}
