package specdb_test

import (
	"fmt"
	"log"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// ExampleOpen opens a two-partition cluster, runs a fixed script of three
// transactions to completion, and inspects the stores. Runs are
// deterministic, so the output is exact.
func ExampleOpen() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})

	// Two single-partition transactions and one multi-partition
	// transaction spanning both partitions.
	script := &workload.Script{Invs: []*specdb.Invocation{
		{Proc: kvstore.ProcName, Args: &kvstore.Args{Keys: map[msg.PartitionID][]string{
			0: {kvstore.ClientKey(0, 0, 0)},
		}}, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: &kvstore.Args{Keys: map[msg.PartitionID][]string{
			1: {kvstore.ClientKey(0, 1, 0)},
		}}, AbortAt: txn.NoAbort},
		{Proc: kvstore.ProcName, Args: &kvstore.Args{Keys: map[msg.PartitionID][]string{
			0: {kvstore.ClientKey(0, 0, 0)},
			1: {kvstore.ClientKey(0, 1, 0)},
		}}, AbortAt: txn.NoAbort},
	}}

	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(1),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, 1, 1)
		}),
		specdb.WithWorkload(script),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := db.Run() // Measure 0: runs the finite script to quiescence

	fmt.Println("committed:", res.Committed)
	fmt.Println("partition 0 counter sum:", kvstore.Sum(db.PartitionStore(0)))
	fmt.Println("partition 1 counter sum:", kvstore.Sum(db.PartitionStore(1)))
	// Output:
	// committed: 3
	// partition 0 counter sum: 2
	// partition 1 counter sum: 2
}

// ExampleSweep runs a scheme × multi-partition-fraction grid — the shape of
// the paper's figures — and prints the cell identities in grid order.
func ExampleSweep() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 4, 2

	cells, err := specdb.Sweep{
		Name: "mini-fig4",
		Base: []specdb.Option{
			specdb.WithPartitions(2),
			specdb.WithClients(clients),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, clients, keys)
			}),
			specdb.WithWarmup(1 * specdb.Millisecond),
			specdb.WithMeasure(4 * specdb.Millisecond),
		},
		Axes: []specdb.Axis{
			specdb.SchemeAxis(specdb.Blocking, specdb.Speculation),
			specdb.NumAxis("mp", []float64{0, 0.5}, func(f float64) []specdb.Option {
				return []specdb.Option{specdb.WithWorkload(&workload.Micro{
					Partitions: 2, KeysPerTxn: keys, MPFraction: f,
				})}
			}),
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cells {
		fmt.Printf("%s mp=%s completed=%v\n", c.Labels[0], c.Labels[1], c.Result.Committed > 0)
	}
	// Output:
	// blocking mp=0 completed=true
	// blocking mp=0.5 completed=true
	// speculation mp=0 completed=true
	// speculation mp=0.5 completed=true
}

// ExampleDB_SetScheme switches a live cluster's concurrency control scheme
// mid-run: the DB drains to a quiescent point, swaps every partition's
// engine, and resumes — all in virtual time, so the run stays deterministic.
// ExampleWithOpenLoop drives a cluster with open-loop Poisson arrivals far
// above its service rate: the in-flight window and pending queue stay
// bounded, the excess is shed, and the tail latency reflects the queueing
// the paper's closed-loop clients cannot express. Deterministic, so the
// output is exact.
func ExampleWithOpenLoop() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 8, 12
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithRegistry(reg),
		specdb.WithSeed(1),
		specdb.WithWarmup(10*specdb.Millisecond),
		specdb.WithMeasure(100*specdb.Millisecond),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: keys}),
		specdb.WithOpenLoop(specdb.OpenLoopConfig{
			Rate:   100_000, // far beyond the ~30k/s service rate
			Window: 2,
			Queue:  4,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := db.Run()
	fmt.Printf("served %d, shed %d, p50 %v, p99 %v\n",
		res.Committed, res.Shed, res.Latency.P50, res.Latency.P99)
	// Output:
	// served 3073, shed 6975, p50 1648.446µs, p99 2755.461µs
}

// ExampleWithDurability runs a durable, unreplicated cluster through a
// crash-restart: the command log and fuzzy checkpoints let the restarted
// primary reload its latest checkpoint, replay the log tail in commit
// order, and resume with state bit-identical to what it committed before
// the crash. Deterministic, so the output is exact.
func ExampleWithDurability() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 4, 4
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(1),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Limit{
			Gen: &workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: 0.1},
			N:   600,
		}),
		specdb.WithDurability(specdb.DurabilityConfig{
			CheckpointInterval: 5 * specdb.Millisecond,
		}),
		specdb.WithFaults(specdb.CrashRestart(0, 8*specdb.Millisecond)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := db.Run()
	ev := res.Recovery[0]
	fmt.Println("committed:", res.Committed)
	fmt.Printf("partition %d recovered: replayed %d txns, downtime %v\n",
		ev.Partition, ev.ReplayTxns, ev.Downtime())
	// Output:
	// committed: 600
	// partition 0 recovered: replayed 32 txns, downtime 11676.541µs
}

func ExampleDB_SetScheme() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 4, 2

	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Blocking),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: 0.2}),
	)
	if err != nil {
		log.Fatal(err)
	}

	db.RunFor(5 * specdb.Millisecond)
	fmt.Println("phase 1:", db.Scheme())
	if err := db.SetScheme(specdb.Locking); err != nil {
		log.Fatal(err)
	}
	db.RunFor(5 * specdb.Millisecond)
	fmt.Println("phase 2:", db.Scheme())
	for _, c := range db.SchemeHistory() {
		fmt.Printf("switched %v -> %v (auto=%v)\n", c.From, c.To, c.Auto)
	}
	// Output:
	// phase 1: blocking
	// phase 2: locking
	// switched blocking -> locking (auto=false)
}

// ExampleWithParallelism runs one cluster at two shard widths. The sharded
// runtime's contract is that the Result is independent of the width — the
// event loop fans out over OS threads without perturbing a single event —
// so the two runs agree bit for bit and only the runtime observability
// (cross-shard traffic, busy split) differs.
func ExampleWithParallelism() {
	run := func(shards int) specdb.Result {
		reg := specdb.NewRegistry()
		reg.Register(kvstore.Proc{})
		const clients, keys = 8, 4
		db, err := specdb.Open(
			specdb.WithPartitions(4),
			specdb.WithClients(clients),
			specdb.WithScheme(specdb.Speculation),
			specdb.WithSeed(42),
			specdb.WithWarmup(2*specdb.Millisecond),
			specdb.WithMeasure(20*specdb.Millisecond),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, clients, keys)
			}),
			specdb.WithWorkloadFactory(func() specdb.Generator {
				return &workload.Micro{Partitions: 4, KeysPerTxn: keys, MPFraction: 0.2}
			}),
			specdb.WithParallelism(specdb.ParallelismConfig{Shards: shards}),
		)
		if err != nil {
			log.Fatal(err)
		}
		return db.Run()
	}
	one, four := run(1), run(4)
	fmt.Println("throughput matches:", one.Throughput == four.Throughput)
	fmt.Println("events match:", one.Events == four.Events)
	fmt.Println("barriers match:", one.Parallel.Barriers == four.Parallel.Barriers)
	fmt.Printf("%.0f txns/s across %d shards\n", four.Throughput, four.Parallel.Shards)
	// Output:
	// throughput matches: true
	// events match: true
	// barriers match: true
	// 23400 txns/s across 4 shards
}

// ExampleScan runs a bounded YCSB-E-style mix — half the transactions are
// declared read-only short range scans against ordered B-tree tables — under
// two-phase locking, and reports how many of the committed transactions were
// scans. Scans are phantom-safe in every scheme: here the locking engine
// covers each scanned range with one shared range lock, so a writer into the
// range waits behind the scan instead of creating a phantom.
func ExampleScan() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 4, 4
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Locking),
		specdb.WithSeed(7),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddOrderedSchema(s) // scans need the B-tree layout
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Limit{Gen: &workload.Micro{
			Partitions:   2,
			KeysPerTxn:   keys,
			MPFraction:   0.25,
			ScanFraction: 0.5,
			ScanLength:   8,
		}, N: 200}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := db.Run() // finite generator: runs the 200 transactions to quiescence

	fmt.Println("committed:", res.Committed)
	fmt.Println("range scans:", res.CommittedScan)
	// Output:
	// committed: 200
	// range scans: 91
}

// ExampleWithElasticity turns on elastic repartitioning under a Zipfian
// hot-partition workload: home-partition popularity concentrates on partition
// 0, the saturation trigger fires at an evaluation interval, and the hot
// partition's upper key range is frozen, copied, and cut over to the idlest
// partition mid-run — a live split of the paper's otherwise static partition
// map. The migration timeline (trigger to cutover, the "dip") and the rows
// moved come back on the Result; determinism is unchanged, so the same seed
// reproduces the same split at the same virtual time.
func ExampleWithElasticity() {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	const clients, keys = 16, 6
	db, err := specdb.Open(
		specdb.WithPartitions(4),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(11),
		specdb.WithWarmup(5*specdb.Millisecond),
		specdb.WithMeasure(40*specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{KeysPerTxn: keys, PartitionSkew: 0.95}
		}),
		specdb.WithElasticity(specdb.ElasticityConfig{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := db.Run()
	for _, m := range res.Migrations {
		fmt.Printf("migration: partition %d -> %d, %d rows, dip %v\n", m.From, m.To, m.RowsMoved, m.Dip())
	}
	fmt.Printf("total dip %v over %d migrations\n", res.MigrationDip, len(res.Migrations))
	// Output:
	// migration: partition 0 -> 3, 48 rows, dip 1232.817µs
	// total dip 1232.817µs over 1 migrations
}
