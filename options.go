package specdb

import (
	"errors"
	"fmt"

	"specdb/internal/advisor"
	"specdb/internal/costs"
	"specdb/internal/txn"
)

// Open validation errors. Each is wrapped with the offending value where one
// exists, so callers can branch with errors.Is and still log useful detail.
var (
	// ErrNoRegistry: no procedure registry was supplied (WithRegistry).
	ErrNoRegistry = errors.New("specdb: no procedure registry (use WithRegistry)")
	// ErrNoWorkload: no workload generator was supplied (WithWorkload).
	ErrNoWorkload = errors.New("specdb: no workload generator (use WithWorkload)")
	// ErrBadScheme: the scheme is not Blocking, Speculation or Locking.
	ErrBadScheme = errors.New("specdb: unknown concurrency control scheme")
	// ErrBadPartitions: the partition count is not positive.
	ErrBadPartitions = errors.New("specdb: partition count must be positive")
	// ErrBadClients: the client count is not positive.
	ErrBadClients = errors.New("specdb: client count must be positive")
	// ErrBadReplicas: the replica count (k) is not positive.
	ErrBadReplicas = errors.New("specdb: replica count must be positive")
	// ErrBadWindow: warmup or measure is negative.
	ErrBadWindow = errors.New("specdb: warmup and measure must be non-negative")
)

// Option configures a DB at Open time. Options apply in order, so later
// options override earlier ones — which is how Sweep axes specialize a shared
// base configuration.
type Option func(*settings)

// settings is the resolved configuration a DB is assembled from.
type settings struct {
	partitions int
	clients    int
	scheme     Scheme
	replicas   int
	costs      CostModel
	lockCfg    LockConfig
	specCfg    SpecConfig
	seed       int64
	warmup     Time
	measure    Time
	registry   *Registry
	catalog    *Catalog
	setup      func(PartitionID, *Store)
	workload   Generator
	onComplete func(clientIdx int, inv *Invocation, reply *Reply)
	advisor    *advisor.Config
}

// defaultSettings mirrors the paper's testbed: two partitions, 40 closed-loop
// clients (§5.1), speculative concurrency control, no replication, Table 2
// costs, and an open-ended run (Measure zero runs to quiescence).
func defaultSettings() settings {
	return settings{
		partitions: 2,
		clients:    40,
		scheme:     Speculation,
		replicas:   1,
		costs:      costs.Default(),
	}
}

func (s *settings) validate() error {
	if s.partitions <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadPartitions, s.partitions)
	}
	if s.clients <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadClients, s.clients)
	}
	if s.replicas <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadReplicas, s.replicas)
	}
	switch s.scheme {
	case Blocking, Speculation, Locking:
	default:
		return fmt.Errorf("%w (%d)", ErrBadScheme, int(s.scheme))
	}
	if s.warmup < 0 || s.measure < 0 {
		return fmt.Errorf("%w (warmup=%v measure=%v)", ErrBadWindow, s.warmup, s.measure)
	}
	if s.registry == nil {
		return ErrNoRegistry
	}
	if s.workload == nil {
		return ErrNoWorkload
	}
	return nil
}

// WithPartitions sets the number of data partitions, each with one
// single-threaded primary. Default 2 (the paper's microbenchmark testbed).
func WithPartitions(n int) Option { return func(s *settings) { s.partitions = n } }

// WithClients sets the number of closed-loop clients. Default 40 (§5.1).
func WithClients(n int) Option { return func(s *settings) { s.clients = n } }

// WithScheme selects the concurrency control scheme. Default Speculation.
func WithScheme(sc Scheme) Option { return func(s *settings) { s.scheme = sc } }

// WithReplicas sets k, the total copies of each partition; k=1 (the default)
// disables replication, as in the paper's model validation (§6.4).
func WithReplicas(k int) Option { return func(s *settings) { s.replicas = k } }

// WithCosts replaces the Table 2 cost calibration.
func WithCosts(cm CostModel) Option { return func(s *settings) { s.costs = cm } }

// WithLockConfig tunes the locking engine (§4.3).
func WithLockConfig(cfg LockConfig) Option { return func(s *settings) { s.lockCfg = cfg } }

// WithSpecConfig tunes the speculative engine (local-only ablation, §4.2.1).
func WithSpecConfig(cfg SpecConfig) Option { return func(s *settings) { s.specCfg = cfg } }

// WithSeed makes the run a pure function of the configuration. Default 0.
func WithSeed(seed int64) Option { return func(s *settings) { s.seed = seed } }

// WithWarmup sets the warm-up period before the measurement window.
func WithWarmup(d Time) Option { return func(s *settings) { s.warmup = d } }

// WithMeasure sets the measurement window length. Zero (the default) runs
// the workload to completion — finite generators only.
func WithMeasure(d Time) Option { return func(s *settings) { s.measure = d } }

// WithRegistry installs the stored procedure registry. Required.
func WithRegistry(reg *Registry) Option { return func(s *settings) { s.registry = reg } }

// WithCatalog describes data distribution; NumPartitions is filled in
// automatically. Optional.
func WithCatalog(cat *Catalog) Option { return func(s *settings) { s.catalog = cat } }

// WithSetup installs schema and loads data on each partition's store (and on
// each backup's).
func WithSetup(fn func(p PartitionID, s *Store)) Option {
	return func(s *settings) { s.setup = fn }
}

// WithWorkload installs the client request generator. Required (or
// WithWorkloadFactory).
func WithWorkload(gen Generator) Option { return func(s *settings) { s.workload = gen } }

// WithWorkloadFactory installs a fresh generator per Open by calling mk at
// option-application time. Sweeps reuse option values across cells and
// repeats, so stateful generators (Script, Limit) must come from a factory
// to avoid leaking consumed state between runs.
func WithWorkloadFactory(mk func() Generator) Option {
	return func(s *settings) { s.workload = mk() }
}

// WithOnComplete observes every completed transaction (scripted runs).
func WithOnComplete(fn func(clientIdx int, inv *Invocation, reply *Reply)) Option {
	return func(s *settings) { s.onComplete = fn }
}

// WithAdvisor enables online adaptive concurrency control (§5.7): at every
// cfg.Interval of virtual time during Run and RunFor, the DB measures the
// interval's multi-partition fraction, multi-round fraction, abort rate and
// conflict rate, feeds them through the §6 analytical model, and — subject
// to the advisor's hysteresis (sample-size gate, improvement margin, switch
// holdoff) — calls SetScheme with the model's recommendation. Zero Config
// fields take documented defaults; WithScheme still selects the starting
// scheme. Switches appear in SchemeHistory with Auto set. The fine-grained
// drivers RunUntil and Step do not evaluate the advisor.
func WithAdvisor(cfg AdvisorConfig) Option {
	return func(s *settings) { c := cfg; s.advisor = &c }
}

// withSeedOffset shifts the configured seed; Sweep uses it to derive distinct
// deterministic seeds for repeated cells.
func withSeedOffset(off int64) Option { return func(s *settings) { s.seed += off } }

// catalogOrDefault returns the configured catalog (or an empty one) with
// NumPartitions filled in.
func (s *settings) catalogOrDefault() *Catalog {
	cat := s.catalog
	if cat == nil {
		cat = &txn.Catalog{}
	}
	cat.NumPartitions = s.partitions
	return cat
}
