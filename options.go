package specdb

import (
	"errors"
	"fmt"

	"specdb/internal/advisor"
	"specdb/internal/client"
	"specdb/internal/costs"
	"specdb/internal/fault"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Open validation errors. Each is wrapped with the offending value where one
// exists, so callers can branch with errors.Is and still log useful detail.
var (
	// ErrNoRegistry: no procedure registry was supplied (WithRegistry).
	ErrNoRegistry = errors.New("specdb: no procedure registry (use WithRegistry)")
	// ErrNoWorkload: no workload generator was supplied (WithWorkload).
	ErrNoWorkload = errors.New("specdb: no workload generator (use WithWorkload)")
	// ErrBadScheme: the scheme is not one of Blocking, Speculation,
	// Locking, MVCC or OCC.
	ErrBadScheme = errors.New("specdb: unknown concurrency control scheme (want Blocking, Speculation, Locking, MVCC or OCC)")
	// ErrBadPartitions: the partition count is not positive.
	ErrBadPartitions = errors.New("specdb: partition count must be positive")
	// ErrBadClients: the client count is not positive.
	ErrBadClients = errors.New("specdb: client count must be positive")
	// ErrBadReplicas: the replica count (k) is not positive.
	ErrBadReplicas = errors.New("specdb: replica count must be positive")
	// ErrBadWindow: warmup or measure is negative.
	ErrBadWindow = errors.New("specdb: warmup and measure must be non-negative")
	// ErrBadFaults: the fault schedule is invalid for the cluster shape
	// (partition out of range, CrashPrimary without a backup to promote,
	// more than one fault per partition, or bad detector parameters).
	ErrBadFaults = errors.New("specdb: invalid fault schedule")
	// ErrFaultsLocking: fault injection is limited to the coordinator-based
	// schemes; under locking, clients coordinate 2PC themselves and there
	// is no central decision log to recover buffered transactions from.
	ErrFaultsLocking = errors.New("specdb: fault injection is not supported under the locking scheme")
	// ErrFaultsAdvisor: the advisor may recommend switching to locking
	// mid-run, which fault injection does not support.
	ErrFaultsAdvisor = errors.New("specdb: fault injection cannot be combined with WithAdvisor")
	// ErrBadOpenLoop: the open-loop configuration is invalid (rate not
	// positive, or a negative window/queue other than QueueNone).
	ErrBadOpenLoop = errors.New("specdb: invalid open-loop configuration")
	// ErrOpenLoopUnbounded: open-loop arrivals never cease, so an
	// open-ended run (Measure zero) would not terminate; set WithMeasure.
	ErrOpenLoopUnbounded = errors.New("specdb: open-loop runs need a measurement window (WithMeasure)")
	// ErrFaultsOpenLoopWindow: failover recovery deduplicates resends by
	// remembering one reply per client, which assumes at most one
	// transaction outstanding per client; open-loop windows above one break
	// that.
	ErrFaultsOpenLoopWindow = errors.New("specdb: fault injection is limited to open-loop windows of 1")
	// ErrBadDurability: a DurabilityConfig field is negative.
	ErrBadDurability = errors.New("specdb: invalid durability configuration")
	// ErrBadParallelism: the ParallelismConfig is invalid — Shards not
	// positive, or a Horizon that is negative or exceeds the cost model's
	// one-way network latency (the minimum cross-shard message latency, and
	// therefore the largest window the conservative barrier protocol can
	// run without reordering).
	ErrBadParallelism = errors.New("specdb: invalid parallelism configuration")
	// ErrBadElasticity: the ElasticityConfig is invalid for this setup — a
	// negative or out-of-range field, fewer than two partitions (nothing to
	// rebalance between), or a workload that cannot be re-targeted after a
	// key-range migration (not RouterAware after unwrapping, or one whose
	// mode rejects routing, e.g. range scans).
	ErrBadElasticity = errors.New("specdb: invalid elasticity configuration")
)

// Option configures a DB at Open time. Options apply in order, so later
// options override earlier ones — which is how Sweep axes specialize a shared
// base configuration.
type Option func(*settings)

// settings is the resolved configuration a DB is assembled from.
type settings struct {
	partitions int
	clients    int
	scheme     Scheme
	replicas   int
	costs      CostModel
	lockCfg    LockConfig
	specCfg    SpecConfig
	seed       int64
	warmup     Time
	measure    Time
	registry   *Registry
	catalog    *Catalog
	setup      func(PartitionID, *Store)
	workload   Generator
	onComplete func(clientIdx int, inv *Invocation, reply *Reply)
	advisor    *advisor.Config
	faults     []fault.Event
	detect     fault.Detection
	openLoop   *OpenLoopConfig
	durable    *DurabilityConfig
	parallel   *ParallelismConfig
	elastic    *ElasticityConfig
	// history enables the serializability oracle's per-partition value-
	// trace recording (test-only; see internal/oracle and DB histories).
	history bool
	// brokenOCC disables OCC commit validation — the oracle's negative
	// control: with it set, the OCC engine intentionally commits
	// unserializable histories that Verify must reject (test-only).
	brokenOCC bool
}

// defaultSettings mirrors the paper's testbed: two partitions, 40 closed-loop
// clients (§5.1), speculative concurrency control, no replication, Table 2
// costs, and an open-ended run (Measure zero runs to quiescence).
func defaultSettings() settings {
	return settings{
		partitions: 2,
		clients:    40,
		scheme:     Speculation,
		replicas:   1,
		costs:      costs.Default(),
	}
}

func (s *settings) validate() error {
	if s.partitions <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadPartitions, s.partitions)
	}
	if s.clients <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadClients, s.clients)
	}
	if s.replicas <= 0 {
		return fmt.Errorf("%w (got %d)", ErrBadReplicas, s.replicas)
	}
	switch s.scheme {
	case Blocking, Speculation, Locking, MVCC, OCC:
	default:
		return fmt.Errorf("%w (%d)", ErrBadScheme, int(s.scheme))
	}
	if s.warmup < 0 || s.measure < 0 {
		return fmt.Errorf("%w (warmup=%v measure=%v)", ErrBadWindow, s.warmup, s.measure)
	}
	if s.registry == nil {
		return ErrNoRegistry
	}
	if s.workload == nil {
		return ErrNoWorkload
	}
	if len(s.faults) > 0 {
		if s.scheme == Locking {
			return ErrFaultsLocking
		}
		if s.advisor != nil {
			return ErrFaultsAdvisor
		}
		if err := fault.Validate(s.faults, s.partitions, s.replicas, s.detect.WithDefaults(), s.durable != nil); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFaults, err)
		}
	}
	if s.durable != nil {
		d := *s.durable
		if d.GroupCommit.MaxBytes < 0 || d.GroupCommit.MaxDelay < 0 ||
			d.CheckpointInterval < 0 || d.DiskLatency < 0 || d.DiskBandwidth < 0 {
			return fmt.Errorf("%w (%+v)", ErrBadDurability, d)
		}
	}
	if s.parallel != nil {
		p := *s.parallel
		if p.Shards < 1 {
			return fmt.Errorf("%w (shards=%d)", ErrBadParallelism, p.Shards)
		}
		if p.Horizon < 0 || p.Horizon > s.costs.OneWayLatency {
			return fmt.Errorf("%w (horizon=%v, one-way latency=%v)", ErrBadParallelism, p.Horizon, s.costs.OneWayLatency)
		}
		if p.Horizon == 0 && s.costs.OneWayLatency <= 0 {
			return fmt.Errorf("%w (no positive horizon: one-way latency=%v)", ErrBadParallelism, s.costs.OneWayLatency)
		}
	}
	if s.elastic != nil {
		e := *s.elastic
		if s.partitions < 2 {
			return fmt.Errorf("%w (need at least 2 partitions, got %d)", ErrBadElasticity, s.partitions)
		}
		if e.Interval < 0 || e.SaturationFraction < 0 || e.SaturationFraction > 1 ||
			e.SaturationRatio < 0 || e.Holdoff < 0 || e.MaxMigrations < 0 ||
			e.CopyLatency < 0 || e.CopyBandwidth < 0 {
			return fmt.Errorf("%w (%+v)", ErrBadElasticity, e)
		}
		if _, ok := s.workload.(workload.RouterAware); !ok {
			return fmt.Errorf("%w (workload %T cannot re-target keys after a migration)", ErrBadElasticity, s.workload)
		}
	}
	if s.openLoop != nil {
		ol := s.openLoop.withDefaults()
		if s.openLoop.Rate <= 0 {
			return fmt.Errorf("%w (rate=%g)", ErrBadOpenLoop, s.openLoop.Rate)
		}
		if s.openLoop.Window < 0 || (s.openLoop.Queue < 0 && s.openLoop.Queue != QueueNone) {
			return fmt.Errorf("%w (window=%d queue=%d)", ErrBadOpenLoop, s.openLoop.Window, s.openLoop.Queue)
		}
		if s.measure == 0 {
			return ErrOpenLoopUnbounded
		}
		if len(s.faults) > 0 && ol.Window > 1 {
			return ErrFaultsOpenLoopWindow
		}
	}
	return nil
}

// WithPartitions sets the number of data partitions, each with one
// single-threaded primary. Default 2 (the paper's microbenchmark testbed).
func WithPartitions(n int) Option { return func(s *settings) { s.partitions = n } }

// WithClients sets the number of closed-loop clients. Default 40 (§5.1).
func WithClients(n int) Option { return func(s *settings) { s.clients = n } }

// WithScheme selects the concurrency control scheme. Default Speculation.
func WithScheme(sc Scheme) Option { return func(s *settings) { s.scheme = sc } }

// WithReplicas sets k, the total copies of each partition; k=1 (the default)
// disables replication, as in the paper's model validation (§6.4).
func WithReplicas(k int) Option { return func(s *settings) { s.replicas = k } }

// WithCosts replaces the Table 2 cost calibration.
func WithCosts(cm CostModel) Option { return func(s *settings) { s.costs = cm } }

// WithLockConfig tunes the locking engine (§4.3).
func WithLockConfig(cfg LockConfig) Option { return func(s *settings) { s.lockCfg = cfg } }

// WithSpecConfig tunes the speculative engine (local-only ablation, §4.2.1).
func WithSpecConfig(cfg SpecConfig) Option { return func(s *settings) { s.specCfg = cfg } }

// WithSeed makes the run a pure function of the configuration. Default 0.
func WithSeed(seed int64) Option { return func(s *settings) { s.seed = seed } }

// WithWarmup sets the warm-up period before the measurement window.
func WithWarmup(d Time) Option { return func(s *settings) { s.warmup = d } }

// WithMeasure sets the measurement window length. Zero (the default) runs
// the workload to completion — finite generators only.
func WithMeasure(d Time) Option { return func(s *settings) { s.measure = d } }

// WithRegistry installs the stored procedure registry. Required.
func WithRegistry(reg *Registry) Option { return func(s *settings) { s.registry = reg } }

// WithCatalog describes data distribution; NumPartitions is filled in
// automatically. Optional.
func WithCatalog(cat *Catalog) Option { return func(s *settings) { s.catalog = cat } }

// WithSetup installs schema and loads data on each partition's store (and on
// each backup's).
func WithSetup(fn func(p PartitionID, s *Store)) Option {
	return func(s *settings) { s.setup = fn }
}

// WithWorkload installs the client request generator. Required (or
// WithWorkloadFactory).
func WithWorkload(gen Generator) Option { return func(s *settings) { s.workload = gen } }

// WithWorkloadFactory installs a fresh generator per Open by calling mk at
// option-application time. Sweeps reuse option values across cells and
// repeats, so stateful generators (Script, Limit) must come from a factory
// to avoid leaking consumed state between runs.
func WithWorkloadFactory(mk func() Generator) Option {
	return func(s *settings) { s.workload = mk() }
}

// ArrivalProcess selects how open-loop interarrival gaps are drawn.
type ArrivalProcess = client.Process

// Arrival processes for OpenLoopConfig.
const (
	// PoissonArrivals draws exponential interarrival gaps — the memoryless
	// aggregate of many independent users. The default.
	PoissonArrivals = client.Poisson
	// UniformArrivals spaces arrivals exactly evenly (a paced load
	// generator); clients are phase-staggered so the aggregate stream is
	// even too.
	UniformArrivals = client.Uniform
)

// QueueNone disables the open-loop pending queue: arrivals beyond the
// in-flight window are shed immediately.
const QueueNone = -1

// Default open-loop bounds applied for zero OpenLoopConfig fields.
const (
	// DefaultOpenLoopWindow is the per-client in-flight bound.
	DefaultOpenLoopWindow = 1
	// DefaultOpenLoopQueue is the per-client pending-arrival bound.
	DefaultOpenLoopQueue = 16
)

// OpenLoopConfig configures open-loop load generation (WithOpenLoop).
type OpenLoopConfig struct {
	// Rate is the aggregate offered load in transactions per second of
	// virtual time, divided evenly across the clients. Required.
	Rate float64
	// Process selects Poisson (default) or uniform interarrival gaps.
	Process ArrivalProcess
	// Window bounds each client's simultaneously in-flight transactions
	// (default 1).
	Window int
	// Queue bounds each client's arrivals waiting for a window slot
	// (default 16; QueueNone disables queueing). Arrivals beyond window
	// and queue are shed and counted (Result.Shed) — bounded backpressure,
	// never an unbounded backlog.
	Queue int
}

// withDefaults fills zero fields.
func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Window == 0 {
		c.Window = DefaultOpenLoopWindow
	}
	if c.Queue == 0 {
		c.Queue = DefaultOpenLoopQueue
	}
	if c.Queue == QueueNone {
		c.Queue = 0
	}
	return c
}

// WithOpenLoop replaces the paper's closed-loop clients with an open-loop
// arrival process: requests arrive at the configured aggregate rate on a
// deterministic Poisson or uniform stream regardless of how fast the cluster
// responds, each client holding at most Window transactions in flight with a
// bounded pending queue behind it (overload sheds arrivals rather than
// growing memory). Latency is measured from arrival, so queue wait — the
// open-loop overload signal the closed loop cannot express — shows up in the
// percentiles. Interarrival gaps come from each client's seeded RNG, so runs
// stay bit-for-bit reproducible. Requires WithMeasure (arrivals never
// cease); fault schedules require Window 1 (recovery resend dedup remembers
// one reply per client).
func WithOpenLoop(cfg OpenLoopConfig) Option {
	return func(s *settings) { c := cfg; s.openLoop = &c }
}

// WithOnComplete observes every completed transaction (scripted runs).
func WithOnComplete(fn func(clientIdx int, inv *Invocation, reply *Reply)) Option {
	return func(s *settings) { s.onComplete = fn }
}

// WithAdvisor enables online adaptive concurrency control (§5.7): at every
// cfg.Interval of virtual time during Run and RunFor, the DB measures the
// interval's multi-partition fraction, multi-round fraction, abort rate and
// conflict rate, feeds them through the §6 analytical model, and — subject
// to the advisor's hysteresis (sample-size gate, improvement margin, switch
// holdoff) — calls SetScheme with the model's recommendation. Zero Config
// fields take documented defaults; WithScheme still selects the starting
// scheme. Switches appear in SchemeHistory with Auto set. The fine-grained
// drivers RunUntil and Step do not evaluate the advisor.
func WithAdvisor(cfg AdvisorConfig) Option {
	return func(s *settings) { c := cfg; s.advisor = &c }
}

// FaultEvent is one scheduled fail-stop crash; build with CrashPrimary or
// CrashBackup.
type FaultEvent = fault.Event

// CrashPrimary schedules partition p's primary to fail-stop at the given
// virtual time: the process dies mid-whatever-it-was-doing, messages to it
// are dropped, and after the detection timeout the partition's first backup
// promotes itself. Requires WithReplicas(k) with k >= 2.
func CrashPrimary(p PartitionID, at Time) FaultEvent {
	return fault.Event{Kind: fault.KindCrashPrimary, Partition: p, At: at}
}

// CrashRestart schedules partition p's primary to fail-stop at the given
// virtual time and come back from disk: after the restart delay (the failure-
// detection timeout, modeling the supervisor noticing the dead process), the
// restarted process loads the latest durable checkpoint, replays the command-
// log tail, resolves in-flight transactions through the coordinator's decision
// log, and resumes as primary. Requires WithDurability and is mutually
// exclusive with replication (use CrashPrimary for failover).
func CrashRestart(p PartitionID, at Time) FaultEvent {
	return fault.Event{Kind: fault.KindCrashRestart, Partition: p, At: at}
}

// CrashBackup schedules partition p's replica-th backup (1-based) to
// fail-stop at the given virtual time. The primary detects the silence,
// detaches the backup, and releases every vote and reply that was gated on
// its acknowledgments.
func CrashBackup(p PartitionID, replica int, at Time) FaultEvent {
	return fault.Event{Kind: fault.KindCrashBackup, Partition: p, Replica: replica, At: at}
}

// WithFaults installs a deterministic crash-fault schedule: each event kills
// one process at a fixed virtual time, and the failure detector / promotion
// machinery recovers (see docs/ARCHITECTURE.md, "Failures and recovery").
// The same seed and schedule reproduce the same Result bit for bit. Each
// partition may appear in at most one event; primary crashes require
// replication (WithReplicas >= 2); the locking scheme and WithAdvisor are
// not supported with faults.
func WithFaults(events ...FaultEvent) Option {
	return func(s *settings) { s.faults = append([]FaultEvent(nil), events...) }
}

// WithFailureDetection tunes the fault-run failure detector: heartbeat is
// the liveness pulse interval and timeout the silence threshold after which
// a process is declared dead. The timeout must be at least twice the
// heartbeat and comfortably exceed the worst heartbeat delivery delay
// (network latency plus receiver CPU backlog), or a loaded-but-alive
// process gets declared dead. Defaults: 1 ms heartbeat, 10 ms timeout.
func WithFailureDetection(heartbeat, timeout Time) Option {
	return func(s *settings) { s.detect = fault.Detection{Heartbeat: heartbeat, Timeout: timeout} }
}

// Default durability parameters applied for zero DurabilityConfig fields.
const (
	// DefaultGroupCommitBytes seals a group-commit batch at 4 KiB.
	DefaultGroupCommitBytes = 4096
	// DefaultGroupCommitDelay bounds a record's wait for its batch at 50 µs.
	DefaultGroupCommitDelay = 50 * Microsecond
	// DefaultCheckpointInterval spaces fuzzy checkpoints 25 ms apart.
	DefaultCheckpointInterval = 25 * Millisecond
	// DefaultDiskLatency is the simulated log device's per-write latency,
	// 20 µs — a datacenter NVMe flush.
	DefaultDiskLatency = 20 * Microsecond
	// DefaultDiskBandwidth is the simulated log device's throughput,
	// 500 MiB/s.
	DefaultDiskBandwidth = 500 << 20
)

// GroupCommitConfig bounds the command log's write batching: a batch is
// written when it reaches MaxBytes or when its oldest record has waited
// MaxDelay, whichever comes first.
type GroupCommitConfig struct {
	// MaxBytes seals the open batch by size (default 4096).
	MaxBytes int
	// MaxDelay seals a non-empty open batch by age (default 50 µs) — the
	// latency bound a committed transaction's reply can wait on the log.
	MaxDelay Time
}

// DurabilityConfig enables the durability subsystem: each partition appends
// committed transaction invocations to a per-partition command log (group-
// committed to a simulated disk), captures fuzzy checkpoints of its store on
// the configured interval, and can recover from a crash by reloading the
// latest checkpoint and replaying the log tail (see CrashRestart). Zero
// fields take the documented defaults.
type DurabilityConfig struct {
	// GroupCommit bounds write batching.
	GroupCommit GroupCommitConfig
	// CheckpointInterval is the target time between fuzzy checkpoints
	// (default 25 ms). Shorter intervals mean shorter log tails and faster
	// recovery, at the cost of more checkpoint writes.
	CheckpointInterval Time
	// DiskLatency is the simulated log device's fixed per-operation latency
	// (default 20 µs).
	DiskLatency Time
	// DiskBandwidth is the device's throughput in bytes per second of
	// virtual time (default 500 MiB/s), charged on top of DiskLatency.
	DiskBandwidth float64
}

// withDefaults fills zero fields.
func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.GroupCommit.MaxBytes == 0 {
		c.GroupCommit.MaxBytes = DefaultGroupCommitBytes
	}
	if c.GroupCommit.MaxDelay == 0 {
		c.GroupCommit.MaxDelay = DefaultGroupCommitDelay
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.DiskLatency == 0 {
		c.DiskLatency = DefaultDiskLatency
	}
	if c.DiskBandwidth == 0 {
		c.DiskBandwidth = DefaultDiskBandwidth
	}
	return c
}

// WithDurability enables command logging and fuzzy checkpointing. Committed
// single-partition replies and multi-partition commit votes are released only
// once their log record's group-commit batch is on the simulated disk — the
// disk edition of forwarding to backups — so durable runs trade a little
// latency for crash-restart recovery (CrashRestart). Runs without faults
// still pay the logging overhead, which is exactly what the durable-overhead
// benchmark measures.
func WithDurability(cfg DurabilityConfig) Option {
	return func(s *settings) { c := cfg; s.durable = &c }
}

// ParallelismConfig configures the sharded parallel runtime.
type ParallelismConfig struct {
	// Shards is the number of event-loop shards (OS threads). Each shard
	// owns a disjoint group of partition/replica/disk actors plus a slice of
	// clients; the coordinator and fault controller live on shard 0. Must be
	// at least 1. Shards == 1 runs the identical windowed algorithm on one
	// goroutine and is the determinism baseline: a run at any width is
	// bit-identical to it.
	Shards int
	// Horizon is the conservative time-window length: all shards advance to
	// a common bound, exchange cross-shard sends, and repeat. It must not
	// exceed the cost model's one-way network latency — the minimum latency
	// of any cross-shard message — or the runtime panics at the first send
	// that would arrive inside its own window. Zero means use the one-way
	// latency, the largest (fewest barriers) safe window. Smaller horizons
	// only add barrier overhead; see docs/ARCHITECTURE.md for tuning.
	Horizon Time
}

// WithParallelism runs the simulation on a sharded deterministic runtime:
// one event loop per shard on its own goroutine, synchronized by
// conservative time-window barriers. Results are bit-identical at every
// shard count (Result.Parallel, which reports runtime observability such as
// cross-shard message counts, is the one width-dependent field). Without
// this option the single-threaded scheduler is used, byte-identical to
// previous releases.
//
// Caveats: workload generators must not share mutable state across clients
// (Micro and TPC-C's Mix as wired by Open are safe only for Micro; stateful
// generators like Script, Limit, and Mixed require Shards == 1), and
// OnComplete callbacks may be invoked concurrently from different shards —
// they are serialized by an internal mutex, but their relative order across
// clients on different shards is unspecified.
func WithParallelism(cfg ParallelismConfig) Option {
	return func(s *settings) { c := cfg; s.parallel = &c }
}

// Default elasticity parameters applied for zero ElasticityConfig fields.
const (
	// DefaultElasticInterval spaces saturation evaluations 10 ms apart.
	DefaultElasticInterval = 10 * Millisecond
	// DefaultSaturationFraction is the busy fraction of an interval above
	// which a partition counts as saturated.
	DefaultSaturationFraction = 0.75
	// DefaultSaturationRatio is how many times busier than the mean of the
	// other partitions the hottest one must be before a split pays.
	DefaultSaturationRatio = 2.0
	// DefaultElasticHoldoff is the number of evaluation intervals skipped
	// after a migration.
	DefaultElasticHoldoff = 1
	// DefaultMaxMigrations bounds the migrations per run.
	DefaultMaxMigrations = 4
	// DefaultCopyLatency is the fixed setup cost charged to donor and
	// destination for one migration, 500 µs.
	DefaultCopyLatency = 500 * Microsecond
	// DefaultCopyBandwidth is the row-copy throughput in bytes per second
	// of virtual time, 100 MiB/s.
	DefaultCopyBandwidth = 100 << 20
)

// ElasticityConfig enables elastic repartitioning (WithElasticity).
type ElasticityConfig struct {
	// Interval is the saturation evaluation period (default 10 ms).
	Interval Time
	// SaturationFraction is the busy-time fraction above which the hottest
	// partition counts as saturated (default 0.75).
	SaturationFraction float64
	// SaturationRatio is the skew threshold: the hottest partition must be
	// at least this multiple of the mean busy time of the remaining
	// partitions (default 2.0).
	SaturationRatio float64
	// Holdoff is how many evaluation intervals to skip after a migration
	// (default 1).
	Holdoff int
	// MaxMigrations bounds the migrations per run (default 4), keeping a
	// pathologically skewed workload from thrashing rows between
	// partitions forever.
	MaxMigrations int
	// CopyLatency is the fixed per-migration setup cost charged to the
	// donor and the destination (default 500 µs).
	CopyLatency Time
	// CopyBandwidth is the row-copy throughput in bytes per second of
	// virtual time (default 100 MiB/s), charged on top of CopyLatency for
	// the migrated bytes.
	CopyBandwidth float64
	// Manual disables the saturation trigger: migrations happen only
	// through explicit DB.Migrate calls.
	Manual bool
}

// withDefaults fills zero fields.
func (c ElasticityConfig) withDefaults() ElasticityConfig {
	if c.Interval == 0 {
		c.Interval = DefaultElasticInterval
	}
	if c.SaturationFraction == 0 {
		c.SaturationFraction = DefaultSaturationFraction
	}
	if c.SaturationRatio == 0 {
		c.SaturationRatio = DefaultSaturationRatio
	}
	if c.Holdoff == 0 {
		c.Holdoff = DefaultElasticHoldoff
	}
	if c.MaxMigrations == 0 {
		c.MaxMigrations = DefaultMaxMigrations
	}
	if c.CopyLatency == 0 {
		c.CopyLatency = DefaultCopyLatency
	}
	if c.CopyBandwidth == 0 {
		c.CopyBandwidth = DefaultCopyBandwidth
	}
	return c
}

// WithElasticity enables elastic repartitioning: at every cfg.Interval of
// virtual time during Run and RunFor, the DB compares per-partition busy
// times and — when one partition is saturated while the rest idle — migrates
// the upper half of the hot partition's key range to the idlest partition
// through a freeze–copy–cutover: the cluster drains to a quiescent point,
// the rows move (priced by CopyLatency and CopyBandwidth), the routing epoch
// advances so workload generators re-target the moved keys, and the paused
// clients resume. Each migration appears in Result.Migrations with its
// timeline; the trigger's hysteresis (saturation fraction, skew ratio,
// post-migration holdoff, MaxMigrations cap) keeps a balanced cluster from
// thrashing. Manual mode skips the trigger and exposes DB.Migrate instead.
//
// Requires at least two partitions and a workload whose generator can
// re-target keys after a migration (workload.Micro; range-scan mixes are
// rejected, their rank-interval bounds cannot follow migrated rows). The
// routing table is deterministic, so elastic runs stay bit-identical across
// same-seed runs and shard widths, and compose with durability: migrations
// are logged and replayed by crash-restart recovery. The fine-grained
// drivers RunUntil and Step do not evaluate the trigger.
func WithElasticity(cfg ElasticityConfig) Option {
	return func(s *settings) { c := cfg; s.elastic = &c }
}

// arrivalFor builds client i's arrival process, or nil for closed-loop
// runs. The aggregate rate divides evenly: each client's mean gap is
// clients/Rate seconds. Uniform clients are phase-staggered by 1/Rate so the
// aggregate stream stays evenly spaced.
func (s *settings) arrivalFor(i int) *client.Arrival {
	if s.openLoop == nil {
		return nil
	}
	ol := s.openLoop.withDefaults()
	mean := Time(float64(s.clients) / ol.Rate * float64(Second))
	if mean < 1 {
		mean = 1
	}
	a := &client.Arrival{
		Mean:    mean,
		Process: ol.Process,
		Window:  ol.Window,
		Queue:   ol.Queue,
	}
	if ol.Process == UniformArrivals {
		a.Phase = mean * Time(i) / Time(s.clients)
	}
	return a
}

// withSeedOffset shifts the configured seed; Sweep uses it to derive distinct
// deterministic seeds for repeated cells.
func withSeedOffset(off int64) Option { return func(s *settings) { s.seed += off } }

// withHistory enables serializability-oracle recording (test-only; the
// histories are read back through DB.histories by this package's tests).
func withHistory() Option { return func(s *settings) { s.history = true } }

// withBrokenOCC disables OCC commit validation — the oracle tests' negative
// control (test-only).
func withBrokenOCC() Option { return func(s *settings) { s.brokenOCC = true } }

// catalogOrDefault returns the configured catalog (or an empty one) with
// NumPartitions filled in.
func (s *settings) catalogOrDefault() *Catalog {
	cat := s.catalog
	if cat == nil {
		cat = &txn.Catalog{}
	}
	cat.NumPartitions = s.partitions
	return cat
}
