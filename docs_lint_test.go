package specdb_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRootPackageExportedDocs enforces the godoc contract on the public
// facade: every exported identifier declared in the root package — types,
// functions, methods, and const/var specs — must carry a doc comment
// (grouped declarations may share the group's comment). CI runs this as the
// docs/lint gate, so regressions fail the build.
func TestRootPackageExportedDocs(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["specdb"]
	if !ok {
		t.Fatalf("root package not found; parsed %v", pkgs)
	}
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || exportedRecv(d) == false {
					continue
				}
				if d.Doc == nil {
					t.Errorf("%s: exported %s lacks a doc comment", fset.Position(d.Pos()), funcLabel(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(s.Pos()), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if id.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								t.Errorf("%s: exported %s %s lacks a doc comment", fset.Position(id.Pos()), d.Tok, id.Name)
							}
						}
					}
				}
			}
		}
	}
}

// TestCompatShimDeprecated pins the migration contract: the legacy Run and
// Config shims must carry a "Deprecated:" doc paragraph pointing callers at
// Open, per the godoc deprecation convention.
func TestCompatShimDeprecated(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "compat.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Run": false, "Config": false}
	for _, decl := range file.Decls {
		var name string
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name, doc = d.Name.Name, d.Doc
		case *ast.GenDecl:
			if len(d.Specs) == 1 {
				if s, ok := d.Specs[0].(*ast.TypeSpec); ok {
					name, doc = s.Name.Name, d.Doc
				}
			}
		}
		if _, tracked := want[name]; !tracked || doc == nil {
			continue
		}
		text := doc.Text()
		if strings.Contains(text, "Deprecated: ") && strings.Contains(text, "Open") {
			want[name] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("compat.go: %s lacks a Deprecated: doc paragraph pointing at Open", name)
		}
	}
}

// exportedRecv reports whether a method's receiver type (if any) is
// exported; top-level functions count as exported receivers.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "method " + id.Name + "." + d.Name.Name
	}
	return "method " + d.Name.Name
}
