package specdb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/storage"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

// restartOpts builds an unreplicated durable microbenchmark cluster with a
// finite workload, suitable for running to quiescence across a crash-restart.
func restartOpts(t *testing.T, scheme Scheme, perClient int, extra ...Option) []Option {
	t.Helper()
	const (
		parts      = 2
		clients    = 16
		keysPerTxn = 6
	)
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []Option{
		WithPartitions(parts),
		WithClients(clients),
		WithScheme(scheme),
		WithRegistry(reg),
		WithSeed(7),
		WithDurability(DurabilityConfig{}),
		WithSetup(func(p PartitionID, s *Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		WithWorkloadFactory(func() Generator {
			return &workload.Limit{
				Gen: &workload.Micro{Partitions: parts, KeysPerTxn: keysPerTxn, MPFraction: 0.2},
				N:   clients * perClient,
			}
		}),
	}
	return append(opts, extra...)
}

// TestCrashRestartExactlyOnce crashes a durable partition mid-traffic and
// verifies exactly-once execution across the restart: the recovered store
// matches the client-observed commit ledger key for key — a committed
// transaction lost by recovery or replayed twice shows up as a counter
// mismatch.
func TestCrashRestartExactlyOnce(t *testing.T) {
	for _, scheme := range []Scheme{Speculation, Blocking} {
		t.Run(scheme.String(), func(t *testing.T) {
			led := newLedger()
			opts := restartOpts(t, scheme, 200,
				WithFaults(CrashRestart(0, 10300*Microsecond)),
				WithOnComplete(func(ci int, inv *Invocation, reply *Reply) {
					led.observe(inv, reply)
				}),
			)
			db, err := Open(opts...)
			if err != nil {
				t.Fatal(err)
			}
			runToQuiescence(t, db)

			res := db.Result()
			if len(res.Recovery) != 1 {
				t.Fatalf("recovery events = %+v", res.Recovery)
			}
			ev := res.Recovery[0]
			if ev.Partition != 0 {
				t.Fatalf("unexpected recovery event %+v", ev)
			}
			if ev.CrashedAt != 10300*Microsecond {
				t.Errorf("CrashedAt = %v", ev.CrashedAt)
			}
			if ev.RestartedAt <= ev.CrashedAt || ev.ResumedAt < ev.RestartedAt {
				t.Errorf("stage times out of order: %+v", ev)
			}
			if ev.CheckpointBytes == 0 {
				t.Errorf("no checkpoint image loaded: %+v", ev)
			}
			if ev.LogBytes == 0 || ev.ReplayTxns == 0 {
				t.Errorf("nothing replayed — the crash missed the traffic: %+v", ev)
			}
			if res.Downtime <= 0 {
				t.Errorf("downtime = %v", res.Downtime)
			}
			if res.ReplayParallelism != 1 {
				t.Errorf("replay parallelism = %d", res.ReplayParallelism)
			}
			if m := db.Peek(); m.Restarts != 1 {
				t.Errorf("metrics restarts = %d", m.Restarts)
			}
			// The restart must be visible to clients: the workload ran to
			// completion.
			var issued uint64
			for _, cl := range db.Clients() {
				if !cl.Idle() {
					t.Fatalf("client %d still busy after quiescence", cl.Index)
				}
				issued += cl.Completed
			}
			if got, want := issued, uint64(16*200); got != want {
				t.Errorf("completed %d transactions, want %d", got, want)
			}
			led.verify(t, db, 2)
		})
	}
}

// TestCrashRestartDeterministic: same seed, same schedule — bit-identical
// Result, bit-identical recovered stores, AND bit-identical command-log
// byte transcripts on every partition.
func TestCrashRestartDeterministic(t *testing.T) {
	run := func() (Result, uint64, uint64, []byte, []byte) {
		db, err := Open(restartOpts(t, Speculation, 100,
			WithFaults(CrashRestart(1, 10300*Microsecond)))...)
		if err != nil {
			t.Fatal(err)
		}
		runToQuiescence(t, db)
		return db.Result(),
			db.PartitionStore(0).Fingerprint(), db.PartitionStore(1).Fingerprint(),
			db.LogBytes(0), db.LogBytes(1)
	}
	r1, fp0a, fp1a, lb0a, lb1a := run()
	r2, fp0b, fp1b, lb0b, lb1b := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ:\n%+v\n%+v", r1, r2)
	}
	if fp0a != fp0b || fp1a != fp1b {
		t.Errorf("store fingerprints differ: (%x,%x) vs (%x,%x)", fp0a, fp1a, fp0b, fp1b)
	}
	if !bytes.Equal(lb0a, lb0b) || !bytes.Equal(lb1a, lb1b) {
		t.Errorf("log byte transcripts differ: (%d,%d) vs (%d,%d) bytes", len(lb0a), len(lb1a), len(lb0b), len(lb1b))
	}
	if len(lb0a) == 0 || len(lb1a) == 0 {
		t.Error("empty log transcripts: durability was not exercised")
	}
	if len(r1.Recovery) != 1 || r1.Recovery[0].ResumedAt == 0 {
		t.Errorf("restart did not complete: %+v", r1.Recovery)
	}
}

// TestCrashRestartStateEquivalence is the restart-equivalence oracle: the
// workload finishes and the cluster quiesces, the pre-crash committed state
// is cloned, then the primary is killed and restarted from disk. The
// recovered store must match the pre-crash clone exactly, key for key —
// checkpoint plus log-tail replay reconstructs committed state bit for bit.
func TestCrashRestartStateEquivalence(t *testing.T) {
	const crashAt = 2 * Second // long after the finite workload drains
	db, err := Open(restartOpts(t, Speculation, 100,
		WithFaults(CrashRestart(0, crashAt)))...)
	if err != nil {
		t.Fatal(err)
	}
	db.RunFor(10 * Millisecond) // kick the clients off
	for i := 0; i < 10_000 && !db.Quiescent(); i++ {
		db.RunFor(10 * Millisecond)
	}
	if !db.Quiescent() || db.Now() >= crashAt {
		t.Fatalf("workload did not quiesce before the crash (now=%v)", db.Now())
	}
	// Let in-flight group commits and checkpoints land, then snapshot the
	// committed truth.
	db.RunFor(10 * Millisecond)
	preCrash := db.PartitionStore(0).Clone()
	before := db.parts[0]

	db.Run() // processes the crash, the restart, and the recovery
	if !db.Quiescent() {
		t.Fatal("cluster did not recover to quiescence")
	}
	recovered := db.PartitionStore(0)
	if db.livePrimary(0) == before {
		t.Fatal("partition 0 was not restarted")
	}
	if err := storage.DiffStores(preCrash, recovered); err != nil {
		t.Fatalf("recovered store differs from pre-crash committed state: %v", err)
	}
	res := db.Result()
	if len(res.Recovery) != 1 || res.Recovery[0].ResumedAt == 0 {
		t.Fatalf("restart did not complete: %+v", res.Recovery)
	}
}

// TestTPCCCrashRestartConsistency crashes a durable TPC-C partition
// mid-window and verifies the recovered cluster still satisfies the TPC-C
// consistency conditions — the strongest end-to-end check that restart
// recovery loses no committed transaction and applies none twice.
func TestTPCCCrashRestartConsistency(t *testing.T) {
	opts, layout, _ := tpccOpts(Speculation, 4, 1200)
	completed := 0
	opts = append(opts,
		WithDurability(DurabilityConfig{}),
		WithFaults(CrashRestart(0, 15*Millisecond)),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completed++ }),
	)
	db := mustOpen(t, opts...)
	for i := 0; i < 10_000 && !db.Quiescent(); i++ {
		db.RunFor(10 * Millisecond)
	}
	if !db.Quiescent() {
		t.Fatal("TPC-C run did not quiesce after the restart")
	}
	db.Run()
	if completed != 1200 {
		t.Fatalf("completed %d of 1200 invocations", completed)
	}
	res := db.Result()
	if len(res.Recovery) != 1 || res.Recovery[0].ResumedAt == 0 {
		t.Fatalf("restart did not complete: %+v", res.Recovery)
	}
	stores := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
	if err := tpcc.CheckConsistency(layout, stores); err != nil {
		t.Fatalf("consistency violated across restart: %v", err)
	}
}

// TestRecoveryLatencyTracksCheckpointInterval: tighter checkpoint intervals
// mean shorter durable log tails and therefore faster recovery. Recovery
// latency must be monotonically non-decreasing in the checkpoint interval,
// with a strict increase across the full range.
func TestRecoveryLatencyTracksCheckpointInterval(t *testing.T) {
	intervals := []Time{2 * Millisecond, 10 * Millisecond, 40 * Millisecond}
	var lats []Time
	for _, iv := range intervals {
		db, err := Open(restartOpts(t, Speculation, 300,
			WithDurability(DurabilityConfig{CheckpointInterval: iv}),
			WithFaults(CrashRestart(0, 60*Millisecond)))...)
		if err != nil {
			t.Fatal(err)
		}
		runToQuiescence(t, db)
		res := db.Result()
		if len(res.Recovery) != 1 || res.Recovery[0].ResumedAt == 0 {
			t.Fatalf("interval %v: restart did not complete: %+v", iv, res.Recovery)
		}
		lats = append(lats, res.Recovery[0].RecoveryLatency())
	}
	for i := 1; i < len(lats); i++ {
		if lats[i] < lats[i-1] {
			t.Errorf("recovery latency not monotone in checkpoint interval: %v -> %v at %v",
				lats[i-1], lats[i], intervals[i])
		}
	}
	if !(lats[len(lats)-1] > lats[0]) {
		t.Errorf("recovery latency flat across %v..%v: %v", intervals[0], intervals[len(intervals)-1], lats)
	}
}

// TestDurabilityValidation covers the WithDurability/CrashRestart envelope.
func TestDurabilityValidation(t *testing.T) {
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	base := []Option{
		WithRegistry(reg),
		WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 2}),
	}
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"restart-without-durability", append(base[:2:2], WithFaults(CrashRestart(0, Millisecond))), ErrBadFaults},
		{"restart-with-replicas", append(base[:2:2], WithReplicas(2), WithDurability(DurabilityConfig{}), WithFaults(CrashRestart(0, Millisecond))), ErrBadFaults},
		{"restart-under-locking", append(base[:2:2], WithScheme(Locking), WithDurability(DurabilityConfig{}), WithFaults(CrashRestart(0, Millisecond))), ErrFaultsLocking},
		{"negative-disk-latency", append(base[:2:2], WithDurability(DurabilityConfig{DiskLatency: -Millisecond})), ErrBadDurability},
		{"negative-group-commit", append(base[:2:2], WithDurability(DurabilityConfig{GroupCommit: GroupCommitConfig{MaxBytes: -1}})), ErrBadDurability},
		{"negative-checkpoint", append(base[:2:2], WithDurability(DurabilityConfig{CheckpointInterval: -Millisecond})), ErrBadDurability},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.opts...); !errors.Is(err, tc.want) {
				t.Errorf("Open = %v, want %v", err, tc.want)
			}
		})
	}
	// A valid durable cluster opens, runs and reports no recovery events.
	db := mustOpen(t, restartOpts(t, Speculation, 5)...)
	db.Run()
	res := db.Result()
	if res.Recovery != nil || res.ReplayParallelism != 0 {
		t.Errorf("fault-free durable run reported recovery: %+v", res.Recovery)
	}
	if len(db.LogBytes(0)) == 0 {
		t.Error("fault-free durable run produced no log bytes")
	}
}
